package interconnect

// Crossbar is a full N×N crossbar with per-port arbitration: every
// cluster owns one output port into the switch and one input port (the
// register-file write side) out of it, each admitting PathsPerCluster
// launches per cycle (0 = unbounded). A transfer needs both its source's
// output port and its destination's input port in the launch cycle; the
// switch itself is non-blocking, so that is the only contention. Every
// transfer is a single hop arriving Latency cycles after launch.
//
// Relative to the paper's Bus fabric the crossbar adds source-side
// arbitration: a cluster bursting copies to several destinations in one
// cycle serializes on its output port, which the bus model lets through.
type Crossbar struct {
	cfg   Config
	out   *linkSched // per-source output ports
	in    *linkSched // per-destination input ports
	stats Stats
}

var _ Topology = (*Crossbar)(nil)

// NewCrossbar builds a full crossbar; it panics on invalid
// configuration.
func NewCrossbar(cfg Config) *Crossbar {
	cfg.Topology = KindCrossbar
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Crossbar{
		cfg: cfg,
		out: newLinkSched(cfg.Clusters, cfg.PathsPerCluster),
		in:  newLinkSched(cfg.Clusters, cfg.PathsPerCluster),
	}
}

// Kind identifies the topology.
func (x *Crossbar) Kind() Kind { return KindCrossbar }

// Config returns the network configuration.
func (x *Crossbar) Config() Config { return x.cfg }

// CanReserve reports whether a transfer src -> dst may launch at the
// given cycle: both the source output port and the destination input
// port must have a free slot.
func (x *Crossbar) CanReserve(src, dst int, cycle int64) bool {
	return x.out.free(src, cycle) && x.in.free(dst, cycle)
}

// Reserve books both ports at cycle and returns the arrival cycle.
func (x *Crossbar) Reserve(src, dst int, cycle int64) (arrival int64, ok bool) {
	if !x.CanReserve(src, dst, cycle) {
		x.stats.Stalls++
		return 0, false
	}
	x.out.book(src, cycle)
	x.in.book(dst, cycle)
	x.stats.record(1)
	return cycle + int64(x.cfg.Latency), true
}

// Stats returns the accumulated measurements.
func (x *Crossbar) Stats() Stats { return x.stats }

// Reset clears reservations and statistics.
func (x *Crossbar) Reset() {
	x.out.reset()
	x.in.reset()
	x.stats = Stats{}
}
