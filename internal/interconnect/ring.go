package interconnect

// Ring is a unidirectional ring: cluster i drives one link toward
// cluster (i+1) mod N. A transfer from src to dst crosses
// (dst-src) mod N links, paying Latency cycles per hop, and must find a
// free launch slot on every link of its route at the cycle it would
// traverse it (the route is reserved atomically at issue, so a transfer
// never blocks mid-flight). PathsPerCluster is the per-link width; 0
// means unbounded.
type Ring struct {
	cfg Config
	// links books launch slots per directed link i -> (i+1) mod N.
	links *linkSched
	stats Stats
}

var _ Topology = (*Ring)(nil)

// NewRing builds a unidirectional ring; it panics on invalid
// configuration.
func NewRing(cfg Config) *Ring {
	cfg.Topology = KindRing
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Ring{cfg: cfg, links: newLinkSched(cfg.Clusters, cfg.PathsPerCluster)}
}

// Kind identifies the topology.
func (r *Ring) Kind() Kind { return KindRing }

// Config returns the network configuration.
func (r *Ring) Config() Config { return r.cfg }

// RingHops is the number of links a transfer crosses on a unidirectional
// N-cluster ring from src to dst: (dst-src) mod N.
func RingHops(n, src, dst int) int {
	return ((dst-src)%n + n) % n
}

// route walks the links of the src -> dst route, calling f with each
// link index and the cycle offset (in hops) at which the transfer
// traverses it; it stops early and returns false when f does.
func (r *Ring) route(src, dst int, f func(link, hop int) bool) bool {
	h := RingHops(r.cfg.Clusters, src, dst)
	for k := 0; k < h; k++ {
		if !f((src+k)%r.cfg.Clusters, k) {
			return false
		}
	}
	return true
}

// CanReserve reports whether a transfer src -> dst may launch at the
// given cycle: every link on the route must have a free slot at the
// cycle the transfer would traverse it.
func (r *Ring) CanReserve(src, dst int, cycle int64) bool {
	lat := int64(r.cfg.Latency)
	return r.route(src, dst, func(link, hop int) bool {
		return r.links.free(link, cycle+int64(hop)*lat)
	})
}

// Reserve books every link of the route and returns the arrival cycle,
// hops × Latency after launch. A transfer between co-located endpoints
// (src == dst, which the simulator never generates) crosses no link and
// arrives immediately.
func (r *Ring) Reserve(src, dst int, cycle int64) (arrival int64, ok bool) {
	if !r.CanReserve(src, dst, cycle) {
		r.stats.Stalls++
		return 0, false
	}
	lat := int64(r.cfg.Latency)
	r.route(src, dst, func(link, hop int) bool {
		r.links.book(link, cycle+int64(hop)*lat)
		return true
	})
	h := RingHops(r.cfg.Clusters, src, dst)
	r.stats.record(h)
	return cycle + int64(h)*lat, true
}

// Stats returns the accumulated measurements.
func (r *Ring) Stats() Stats { return r.stats }

// Reset clears reservations and statistics.
func (r *Ring) Reset() {
	r.links.reset()
	r.stats = Stats{}
}
