package interconnect

import "testing"

func TestKindRoundTrip(t *testing.T) {
	names := KindNames()
	want := []string{"bus", "ring", "crossbar", "mesh"}
	if len(names) != len(want) {
		t.Fatalf("KindNames = %v, want %v", names, want)
	}
	for i, n := range want {
		if names[i] != n {
			t.Errorf("KindNames[%d] = %q, want %q", i, names[i], n)
		}
		k, err := ParseKind(n)
		if err != nil || k != Kind(i) {
			t.Errorf("ParseKind(%q) = %v, %v", n, k, err)
		}
	}
	if _, err := ParseKind("torus"); err == nil {
		t.Error("ParseKind must reject unknown names")
	}
}

func TestNewDispatch(t *testing.T) {
	for k := Kind(0); k < numKinds; k++ {
		tp := New(Config{Topology: k, Clusters: 4, PathsPerCluster: 1, Latency: 1})
		if tp.Kind() != k {
			t.Errorf("New(%v).Kind() = %v", k, tp.Kind())
		}
		if tp.Config().Topology != k {
			t.Errorf("New(%v).Config().Topology = %v", k, tp.Config().Topology)
		}
	}
}

// Ring hop-latency math: hops = (dst-src) mod N, arrival = launch +
// hops*latency.
func TestRingHopLatency(t *testing.T) {
	cases := []struct {
		n, src, dst int
		hops        int
	}{
		{4, 0, 1, 1},
		{4, 0, 3, 3},
		{4, 3, 0, 1},
		{4, 2, 1, 3},
		{4, 1, 1, 0},
		{2, 1, 0, 1},
		{8, 5, 2, 5},
	}
	for _, c := range cases {
		if h := RingHops(c.n, c.src, c.dst); h != c.hops {
			t.Errorf("RingHops(%d, %d, %d) = %d, want %d", c.n, c.src, c.dst, h, c.hops)
		}
		for _, lat := range []int{1, 2, 4} {
			r := NewRing(Config{Clusters: c.n, PathsPerCluster: 0, Latency: lat})
			arr, ok := r.Reserve(c.src, c.dst, 100)
			if !ok || arr != 100+int64(c.hops*lat) {
				t.Errorf("ring(%d clusters, lat %d) %d->%d arrival = %d, want %d",
					c.n, lat, c.src, c.dst, arr, 100+int64(c.hops*lat))
			}
			if st := r.Stats(); st.Transfers != 1 || st.Hops[c.hops] != 1 {
				t.Errorf("ring stats = %+v, want 1 transfer at hop %d", st, c.hops)
			}
		}
	}
}

// A ring transfer contends for every link on its route: a long route
// blocks a short one that shares any link in the same traversal cycle.
func TestRingLinkContention(t *testing.T) {
	r := NewRing(Config{Clusters: 4, PathsPerCluster: 1, Latency: 1})
	// 0 -> 2 crosses link 0 at cycle 10 and link 1 at cycle 11.
	if _, ok := r.Reserve(0, 2, 10); !ok {
		t.Fatal("first route must reserve")
	}
	// 0 -> 1 needs link 0 at cycle 10: busy.
	if _, ok := r.Reserve(0, 1, 10); ok {
		t.Error("shared link 0 at cycle 10 must conflict")
	}
	// 1 -> 2 needs link 1 at cycle 10: free (the first transfer crosses
	// link 1 only at cycle 11).
	if _, ok := r.Reserve(1, 2, 10); !ok {
		t.Error("link 1 at cycle 10 must be free")
	}
	// 1 -> 2 again, launching at 11: link 1 at cycle 11 is held by the
	// in-flight 0 -> 2 transfer.
	if _, ok := r.Reserve(1, 2, 11); ok {
		t.Error("link 1 at cycle 11 must be held by the in-flight transfer")
	}
	if st := r.Stats(); st.Stalls != 2 {
		t.Errorf("stalls = %d, want 2", st.Stalls)
	}
}

// A failed multi-link reservation must not leave partial bookings.
func TestRingFailedReserveLeavesNoBooking(t *testing.T) {
	r := NewRing(Config{Clusters: 4, PathsPerCluster: 1, Latency: 1})
	if _, ok := r.Reserve(1, 2, 10); !ok { // holds link 1 at cycle 10
		t.Fatal("setup reserve")
	}
	// 0 -> 2 launching at 9 crosses link 0 at cycle 9 (free) and link 1
	// at cycle 10 (busy): the reservation fails as a whole.
	if _, ok := r.Reserve(0, 2, 9); ok {
		t.Fatal("route over busy link must fail")
	}
	// Link 0 at cycle 9 must still be free for a direct transfer.
	if _, ok := r.Reserve(0, 1, 9); !ok {
		t.Error("failed reservation must not book earlier links of its route")
	}
}

// Crossbar port contention: the source output port and destination input
// port each admit PathsPerCluster launches per cycle.
func TestCrossbarPortContention(t *testing.T) {
	x := NewCrossbar(Config{Clusters: 4, PathsPerCluster: 1, Latency: 2})
	arr, ok := x.Reserve(0, 1, 5)
	if !ok || arr != 7 {
		t.Fatalf("first reserve = %d,%v, want 7,true", arr, ok)
	}
	// Same source, different destination: output port 0 is taken.
	if _, ok := x.Reserve(0, 2, 5); ok {
		t.Error("source output port must arbitrate")
	}
	// Different source, same destination: input port 1 is taken.
	if _, ok := x.Reserve(2, 1, 5); ok {
		t.Error("destination input port must arbitrate")
	}
	// Disjoint ports: fine.
	if _, ok := x.Reserve(2, 3, 5); !ok {
		t.Error("disjoint port pair must not conflict")
	}
	// Next cycle both ports are free again.
	if _, ok := x.Reserve(0, 1, 6); !ok {
		t.Error("ports must be free next cycle")
	}
	if st := x.Stats(); st.Stalls != 2 || st.Transfers != 3 {
		t.Errorf("stats = %+v, want 2 stalls, 3 transfers", st)
	}
}

// A denied crossbar reservation must not book the free half of the port
// pair.
func TestCrossbarFailedReserveLeavesNoBooking(t *testing.T) {
	x := NewCrossbar(Config{Clusters: 4, PathsPerCluster: 1, Latency: 1})
	x.Reserve(0, 1, 5)
	if _, ok := x.Reserve(2, 1, 5); ok { // input port 1 busy
		t.Fatal("expected input-port conflict")
	}
	// Output port 2 must still be free.
	if _, ok := x.Reserve(2, 3, 5); !ok {
		t.Error("failed reservation must not book the output port")
	}
}

func TestMeshDims(t *testing.T) {
	cases := []struct{ n, w, h int }{
		{4, 2, 2}, {6, 3, 2}, {8, 4, 2}, {9, 3, 3}, {12, 4, 3}, {16, 4, 4},
		{5, 5, 1}, {7, 7, 1},
	}
	for _, c := range cases {
		w, h := MeshDims(c.n)
		if w != c.w || h != c.h {
			t.Errorf("MeshDims(%d) = %dx%d, want %dx%d", c.n, w, h, c.w, c.h)
		}
	}
}

// Mesh hop-latency math: hops = Manhattan distance on the grid, arrival
// = launch + hops*latency.
func TestMeshHopLatency(t *testing.T) {
	// 2x2 grid: 0 1 / 2 3.
	cases := []struct {
		n, src, dst, hops int
	}{
		{4, 0, 1, 1},
		{4, 0, 3, 2},
		{4, 3, 0, 2},
		{4, 1, 2, 2},
		{4, 2, 3, 1},
		// 3x2 grid: 0 1 2 / 3 4 5.
		{6, 0, 5, 3},
		{6, 3, 2, 3},
		{6, 4, 1, 1},
	}
	for _, c := range cases {
		w, _ := MeshDims(c.n)
		if h := MeshHops(w, c.src, c.dst); h != c.hops {
			t.Errorf("MeshHops(w=%d, %d, %d) = %d, want %d", w, c.src, c.dst, h, c.hops)
		}
		for _, lat := range []int{1, 3} {
			m := NewMesh(Config{Clusters: c.n, PathsPerCluster: 0, Latency: lat})
			arr, ok := m.Reserve(c.src, c.dst, 50)
			if !ok || arr != 50+int64(c.hops*lat) {
				t.Errorf("mesh(%d clusters, lat %d) %d->%d arrival = %d, want %d",
					c.n, lat, c.src, c.dst, arr, 50+int64(c.hops*lat))
			}
		}
	}
}

// Mesh X-then-Y routes contend on shared directed links and dodge
// disjoint ones; opposite directions of one edge are independent links.
func TestMeshLinkContention(t *testing.T) {
	// 2x2 grid: 0 1 / 2 3. Route 0->3 is east (0->1) then south (1->3).
	m := NewMesh(Config{Clusters: 4, PathsPerCluster: 1, Latency: 1})
	if _, ok := m.Reserve(0, 3, 10); !ok {
		t.Fatal("first route must reserve")
	}
	// 0 -> 1 shares the east link out of node 0 at cycle 10.
	if _, ok := m.Reserve(0, 1, 10); ok {
		t.Error("shared east link must conflict")
	}
	// 1 -> 0 uses the west link out of node 1: independent direction.
	if _, ok := m.Reserve(1, 0, 10); !ok {
		t.Error("opposite direction must be an independent link")
	}
	// 1 -> 3 launching at 11 needs the south link out of node 1 at cycle
	// 11, held by the in-flight 0->3 transfer.
	if _, ok := m.Reserve(1, 3, 11); ok {
		t.Error("south link at cycle 11 must be held")
	}
	if st := m.Stats(); st.Stalls != 2 || st.Transfers != 2 {
		t.Errorf("stats = %+v, want 2 stalls, 2 transfers", st)
	}
}

func TestStatsMeanHops(t *testing.T) {
	var s Stats
	s.record(1)
	s.record(3)
	s.record(3)
	if s.Transfers != 3 || s.Hops[1] != 1 || s.Hops[3] != 2 {
		t.Fatalf("stats = %+v", s)
	}
	if mh := s.MeanHops(); mh < 2.33 || mh > 2.34 {
		t.Errorf("MeanHops = %f, want 7/3", mh)
	}
	if (Stats{}).MeanHops() != 0 {
		t.Error("empty stats MeanHops must be 0")
	}
}

// Unbounded ring and mesh never stall regardless of route overlap.
func TestUnboundedTopologiesNeverStall(t *testing.T) {
	tops := []Topology{
		NewRing(Config{Clusters: 4, Latency: 1}),
		NewMesh(Config{Clusters: 4, Latency: 1}),
		NewCrossbar(Config{Clusters: 4, Latency: 1}),
	}
	for _, tp := range tops {
		for i := 0; i < 50; i++ {
			if _, ok := tp.Reserve(0, 3, 5); !ok {
				t.Errorf("%v: unbounded reservation must succeed", tp.Kind())
			}
		}
		if st := tp.Stats(); st.Stalls != 0 || st.Transfers != 50 {
			t.Errorf("%v stats = %+v", tp.Kind(), st)
		}
	}
}
