package interconnect

import (
	"testing"
	"testing/quick"
)

func TestConfigValidate(t *testing.T) {
	if err := (Config{Clusters: 4, PathsPerCluster: 1, Latency: 1}).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{Clusters: 0, Latency: 1},
		{Clusters: 2, PathsPerCluster: -1, Latency: 1},
		{Clusters: 2, Latency: 0},
		{Topology: numKinds, Clusters: 2, Latency: 1},
		{Topology: -1, Clusters: 2, Latency: 1},
		{Topology: KindMesh, Clusters: 2, Latency: 1},
		{Topology: KindRing, Clusters: 1, Latency: 1},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %+v should be invalid", c)
		}
	}
}

func TestUnboundedNeverStalls(t *testing.T) {
	n := NewBus(Config{Clusters: 4, PathsPerCluster: 0, Latency: 1})
	for i := 0; i < 100; i++ {
		if _, ok := n.Reserve(0, 2, 10); !ok {
			t.Fatal("unbounded network must never stall")
		}
	}
	if st := n.Stats(); st.Transfers != 100 || st.Stalls != 0 {
		t.Errorf("stats = %d transfers, %d stalls", st.Transfers, st.Stalls)
	}
}

func TestSinglePathConflict(t *testing.T) {
	n := NewBus(Config{Clusters: 2, PathsPerCluster: 1, Latency: 1})
	arr, ok := n.Reserve(0, 1, 5)
	if !ok || arr != 6 {
		t.Fatalf("first reserve = %d,%v", arr, ok)
	}
	if _, ok := n.Reserve(0, 1, 5); ok {
		t.Error("second reserve same cycle same dst must fail")
	}
	// Different destination has its own bus.
	if _, ok := n.Reserve(1, 0, 5); !ok {
		t.Error("other destination must be free")
	}
	// Next cycle the bus is free again (fully pipelined).
	if _, ok := n.Reserve(0, 1, 6); !ok {
		t.Error("bus must be free on the next cycle")
	}
	if st := n.Stats(); st.Stalls != 1 {
		t.Errorf("stalls = %d, want 1", st.Stalls)
	}
}

func TestBusIgnoresSource(t *testing.T) {
	// The paper's fabric arbitrates only destination write ports: two
	// same-cycle transfers from one source to different destinations both
	// launch, while two from different sources to one destination with a
	// single path conflict.
	n := NewBus(Config{Clusters: 4, PathsPerCluster: 1, Latency: 1})
	if _, ok := n.Reserve(0, 1, 3); !ok {
		t.Fatal("first launch from source 0")
	}
	if _, ok := n.Reserve(0, 2, 3); !ok {
		t.Error("same source, different destination must not conflict on a bus")
	}
	if _, ok := n.Reserve(3, 1, 3); ok {
		t.Error("different source, same destination must conflict")
	}
}

func TestMultiplePaths(t *testing.T) {
	n := NewBus(Config{Clusters: 4, PathsPerCluster: 2, Latency: 4})
	if _, ok := n.Reserve(0, 3, 0); !ok {
		t.Fatal("path 1 should reserve")
	}
	if _, ok := n.Reserve(1, 3, 0); !ok {
		t.Fatal("path 2 should reserve")
	}
	if _, ok := n.Reserve(2, 3, 0); ok {
		t.Fatal("third reserve must fail with 2 paths")
	}
	arr, ok := n.Reserve(0, 3, 1)
	if !ok || arr != 5 {
		t.Errorf("latency-4 arrival = %d, want 5", arr)
	}
}

func TestCanReserveDoesNotBook(t *testing.T) {
	n := NewBus(Config{Clusters: 2, PathsPerCluster: 1, Latency: 1})
	for i := 0; i < 5; i++ {
		if !n.CanReserve(1, 0, 7) {
			t.Fatal("CanReserve must not consume the slot")
		}
	}
	if n.Stats().Transfers != 0 {
		t.Error("CanReserve must not count transfers")
	}
}

func TestWindowAdvance(t *testing.T) {
	n := NewBus(Config{Clusters: 2, PathsPerCluster: 1, Latency: 1})
	n.Reserve(1, 0, 3)
	// Far in the future: the old booking must have expired and the ring
	// slot reused cleanly.
	if _, ok := n.Reserve(1, 0, 3+defaultWindow*2); !ok {
		t.Error("slot after window advance must be free")
	}
	if _, ok := n.Reserve(1, 0, 3+defaultWindow*2); ok {
		t.Error("second booking in same future cycle must fail")
	}
}

func TestReset(t *testing.T) {
	n := NewBus(Config{Clusters: 2, PathsPerCluster: 1, Latency: 1})
	n.Reserve(1, 0, 1)
	n.Reserve(1, 0, 1)
	n.Reset()
	if st := n.Stats(); st.Transfers != 0 || st.Stalls != 0 {
		t.Error("reset must clear stats")
	}
	if _, ok := n.Reserve(1, 0, 1); !ok {
		t.Error("reset must clear bookings")
	}
}

func TestNewPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New must panic on invalid config")
		}
	}()
	New(Config{Clusters: 0, Latency: 1})
}

// Property: with B paths, exactly B reservations succeed per (dst, cycle).
func TestBandwidthBoundProperty(t *testing.T) {
	f := func(b uint8, cyc uint16) bool {
		paths := int(b%4) + 1
		n := NewBus(Config{Clusters: 2, PathsPerCluster: paths, Latency: 1})
		okCount := 0
		for i := 0; i < 8; i++ {
			if _, ok := n.Reserve(0, 1, int64(cyc)); ok {
				okCount++
			}
		}
		return okCount == paths
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: bus arrival is always launch + latency.
func TestArrivalLatencyProperty(t *testing.T) {
	f := func(lat uint8, cyc uint16) bool {
		l := int(lat%8) + 1
		n := NewBus(Config{Clusters: 2, PathsPerCluster: 0, Latency: l})
		arr, ok := n.Reserve(1, 0, int64(cyc))
		return ok && arr == int64(cyc)+int64(l)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
