// Package interconnect models the inter-cluster communication network.
//
// The paper (§2.1, §4.2) evaluates one fabric: for an N-cluster
// configuration, N×B independent fully-pipelined point-to-point buses,
// where each bus can be driven by any cluster and feeds one dedicated
// write port on a single destination cluster's register file. A transfer
// occupies its bus for exactly one cycle (issue-time reservation, like
// any other resource) and the value arrives Latency cycles later. That
// model is the Bus topology here, and it remains the default.
//
// Because the paper's first-order result is that wire delay — not
// execution bandwidth — bounds clustered performance, the natural
// follow-up question is how its steering and value-prediction mechanisms
// behave on richer, contention-prone fabrics. The package therefore
// exposes a Topology interface with four implementations:
//
//   - Bus: the paper's N×B write-port buses (§4.2), bit-for-bit the
//     original model.
//   - Ring: a unidirectional ring; a transfer crosses (dst-src) mod N
//     links, each hop costing Latency cycles, and contends for every
//     link on its path.
//   - Crossbar: a full N×N crossbar with per-port arbitration — a
//     transfer needs both its source output port and its destination
//     input port in the launch cycle.
//   - Mesh: a 2D mesh with dimension-order (X-then-Y) routing for 4+
//     cluster machines; hop count is the Manhattan distance.
//
// Unbounded bandwidth (the paper's default isolation configuration) is
// modeled with PathsPerCluster == 0 in every topology; bounded
// configurations reuse PathsPerCluster as the per-port or per-link
// width. Every topology reports Stats: completed transfers, stalled
// reservation attempts, and a histogram of route lengths in hops.
package interconnect

import (
	"fmt"
	"strings"
)

// Kind selects a network topology.
type Kind int

const (
	// KindBus is the paper's N×B fully-pipelined write-port buses
	// (§2.1, §4.2) — the default.
	KindBus Kind = iota
	// KindRing is a unidirectional ring with hop-based latency.
	KindRing
	// KindCrossbar is a full crossbar with per-port arbitration.
	KindCrossbar
	// KindMesh is a 2D mesh with dimension-order routing (4+ clusters).
	KindMesh

	numKinds // sentinel for validation
)

// String names the topology kind.
func (k Kind) String() string {
	switch k {
	case KindBus:
		return "bus"
	case KindRing:
		return "ring"
	case KindCrossbar:
		return "crossbar"
	case KindMesh:
		return "mesh"
	}
	return fmt.Sprintf("topology?%d", int(k))
}

// KindNames lists the selectable topology names in declaration order.
func KindNames() []string {
	names := make([]string, numKinds)
	for k := Kind(0); k < numKinds; k++ {
		names[k] = k.String()
	}
	return names
}

// ParseKind resolves a topology name (as printed by Kind.String) to its
// Kind; the error lists the valid names.
func ParseKind(name string) (Kind, error) {
	for k := Kind(0); k < numKinds; k++ {
		if k.String() == name {
			return k, nil
		}
	}
	return 0, fmt.Errorf("unknown topology %q (valid: %s)", name, strings.Join(KindNames(), ", "))
}

// Config describes the interconnect.
type Config struct {
	// Topology selects the network model; the zero value is the paper's
	// bus fabric.
	Topology Kind
	// Clusters is N, the number of clusters.
	Clusters int
	// PathsPerCluster is B, the per-port (bus, crossbar) or per-link
	// (ring, mesh) transfer width per cycle; 0 means unbounded
	// bandwidth.
	PathsPerCluster int
	// Latency is the per-hop transfer latency in cycles (the paper
	// evaluates 1, 2 and 4 on the single-hop bus).
	Latency int
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Topology < 0 || c.Topology >= numKinds {
		return fmt.Errorf("interconnect: unknown topology %d (valid: %s)", int(c.Topology), strings.Join(KindNames(), ", "))
	}
	if c.Clusters <= 0 {
		return fmt.Errorf("interconnect: clusters must be positive, got %d", c.Clusters)
	}
	if c.PathsPerCluster < 0 {
		return fmt.Errorf("interconnect: negative paths per cluster %d", c.PathsPerCluster)
	}
	if c.Latency <= 0 {
		return fmt.Errorf("interconnect: latency must be >= 1, got %d", c.Latency)
	}
	if c.Topology == KindRing && c.Clusters < 2 {
		return fmt.Errorf("interconnect: ring topology needs >= 2 clusters, got %d", c.Clusters)
	}
	if c.Topology == KindMesh && c.Clusters < 4 {
		return fmt.Errorf("interconnect: mesh topology needs >= 4 clusters, got %d", c.Clusters)
	}
	return nil
}

// Stats is the per-topology measurement record.
type Stats struct {
	// Transfers counts completed reservations (the paper's
	// "communications").
	Transfers uint64
	// Stalls counts reservation attempts denied for bandwidth.
	Stalls uint64
	// Hops is the route-length histogram: Hops[h] transfers crossed h
	// links. Bus and crossbar transfers are always single-hop.
	Hops []uint64
}

// record accounts one completed transfer of the given hop count.
func (s *Stats) record(hops int) {
	s.Transfers++
	for len(s.Hops) <= hops {
		s.Hops = append(s.Hops, 0)
	}
	s.Hops[hops]++
}

// MeanHops is the average route length over all transfers.
func (s Stats) MeanHops() float64 {
	if s.Transfers == 0 {
		return 0
	}
	var sum uint64
	for h, n := range s.Hops {
		sum += uint64(h) * n
	}
	return float64(sum) / float64(s.Transfers)
}

// Topology is a pluggable inter-cluster network model. The issue stage
// reserves a route like any other resource: CanReserve asks whether a
// transfer from cluster src to cluster dst could launch at the given
// cycle, and Reserve books it, returning the cycle the value arrives at
// the destination's register file. Implementations are deterministic and
// single-threaded, matching the cycle-driven simulator that owns them.
type Topology interface {
	// Kind identifies the topology.
	Kind() Kind
	// Config returns the network configuration.
	Config() Config
	// CanReserve reports whether a transfer src -> dst may launch at the
	// given cycle, without consuming any resource.
	CanReserve(src, dst int, cycle int64) bool
	// Reserve books a transfer src -> dst launching at cycle and returns
	// the arrival cycle. ok is false when some resource on the route is
	// busy, in which case the caller must retry later (the issue logic
	// keeps the copy in its queue) and a stall is counted.
	Reserve(src, dst int, cycle int64) (arrival int64, ok bool)
	// Stats returns the accumulated measurements.
	Stats() Stats
	// Reset clears reservations and statistics.
	Reset()
}

// New builds the topology selected by cfg.Topology; it panics on invalid
// configuration (construction happens behind config.Validate in any
// supported path).
func New(cfg Config) Topology {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	switch cfg.Topology {
	case KindRing:
		return NewRing(cfg)
	case KindCrossbar:
		return NewCrossbar(cfg)
	case KindMesh:
		return NewMesh(cfg)
	default:
		return NewBus(cfg)
	}
}
