// Package interconnect models the paper's inter-cluster communication
// network (§2.1, §4.2): for an N-cluster configuration, N×B independent
// fully-pipelined paths, where each path is a bus that any cluster can
// drive and that feeds one dedicated write port on a single destination
// cluster's register file. A transfer occupies its bus for exactly one
// cycle (issue-time reservation, like any other resource), and the value
// arrives Latency cycles later.
//
// Unbounded bandwidth (the paper's default isolation configuration) is
// modeled with PathsPerCluster == 0.
package interconnect

import "fmt"

// Config describes the interconnect.
type Config struct {
	// Clusters is N, the number of clusters.
	Clusters int
	// PathsPerCluster is B, the number of buses terminating at each
	// cluster's register file; 0 means unbounded bandwidth.
	PathsPerCluster int
	// Latency is the bus transfer latency in cycles (the paper evaluates
	// 1, 2 and 4).
	Latency int
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Clusters <= 0 {
		return fmt.Errorf("interconnect: clusters must be positive, got %d", c.Clusters)
	}
	if c.PathsPerCluster < 0 {
		return fmt.Errorf("interconnect: negative paths per cluster %d", c.PathsPerCluster)
	}
	if c.Latency <= 0 {
		return fmt.Errorf("interconnect: latency must be >= 1, got %d", c.Latency)
	}
	return nil
}

// Network tracks per-cycle bus reservations. Because buses are fully
// pipelined, the only contended resource is the single launch slot per
// bus per cycle; we track, per destination cluster, how many launches
// have been booked for each cycle in a sliding window.
type Network struct {
	cfg Config
	// booked[dst] maps cycle -> number of transfers launched that cycle
	// toward dst. A ring buffer keyed by cycle keeps it O(1).
	booked [][]int
	window int64
	base   []int64

	// Transfers counts completed bus reservations (the paper's
	// "communications").
	Transfers uint64
	// Stalls counts reservation attempts that found all buses busy.
	Stalls uint64
}

const defaultWindow = 1024

// New builds a Network; it panics on invalid configuration.
func New(cfg Config) *Network {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	n := &Network{cfg: cfg, window: defaultWindow}
	n.booked = make([][]int, cfg.Clusters)
	n.base = make([]int64, cfg.Clusters)
	for i := range n.booked {
		n.booked[i] = make([]int, defaultWindow)
	}
	return n
}

// Config returns the network configuration.
func (n *Network) Config() Config { return n.cfg }

// Unbounded reports whether bandwidth is unlimited.
func (n *Network) Unbounded() bool { return n.cfg.PathsPerCluster == 0 }

func (n *Network) slot(dst int, cycle int64) *int {
	// Advance the ring window if the cycle moved past it.
	for cycle >= n.base[dst]+n.window {
		idx := n.base[dst] % n.window
		n.booked[dst][idx] = 0
		n.base[dst]++
	}
	if cycle < n.base[dst] {
		// Reservation in the already-expired past: treat as a fresh slot.
		// This cannot happen with a monotonically advancing core clock.
		return nil
	}
	return &n.booked[dst][cycle%n.window]
}

// CanReserve reports whether a transfer toward cluster dst may launch at
// the given cycle.
func (n *Network) CanReserve(dst int, cycle int64) bool {
	if n.Unbounded() {
		return true
	}
	s := n.slot(dst, cycle)
	if s == nil {
		return true
	}
	return *s < n.cfg.PathsPerCluster
}

// Reserve books a launch slot toward dst at cycle and returns the arrival
// cycle. ok is false when every bus toward dst is busy that cycle, in
// which case the caller must retry later (the issue logic keeps the copy
// in its queue).
func (n *Network) Reserve(dst int, cycle int64) (arrival int64, ok bool) {
	if !n.CanReserve(dst, cycle) {
		n.Stalls++
		return 0, false
	}
	if !n.Unbounded() {
		if s := n.slot(dst, cycle); s != nil {
			*s++
		}
	}
	n.Transfers++
	return cycle + int64(n.cfg.Latency), true
}

// Reset clears reservations and statistics.
func (n *Network) Reset() {
	for i := range n.booked {
		for j := range n.booked[i] {
			n.booked[i][j] = 0
		}
		n.base[i] = 0
	}
	n.Transfers = 0
	n.Stalls = 0
}
