package interconnect

// Mesh is a 2D mesh for 4+ cluster machines. Clusters are laid out on
// the most-square W×H grid that tiles the cluster count exactly (4 ->
// 2×2, 6 -> 3×2, 8 -> 4×2; a prime count degenerates to a 1×N linear
// array), cluster i sitting at column i mod W, row i / W. Routing is
// dimension-ordered (X first, then Y), the standard deadlock-free choice
// for meshes; a transfer crosses the Manhattan distance in links, pays
// Latency cycles per hop, and reserves a launch slot on every directed
// link of its route at the cycle it traverses it. PathsPerCluster is the
// per-link width; 0 means unbounded.
type Mesh struct {
	cfg  Config
	w, h int
	// links books launch slots per directed link, indexed node*4+dir.
	links *linkSched
	stats Stats
}

var _ Topology = (*Mesh)(nil)

// Directed link directions out of a node.
const (
	dirEast = iota
	dirWest
	dirSouth
	dirNorth
	numDirs
)

// MeshDims returns the grid shape for n clusters: the most-square W×H
// factorization with W >= H (prime n yields n×1).
func MeshDims(n int) (w, h int) {
	h = 1
	for (h+1)*(h+1) <= n {
		h++
	}
	for n%h != 0 {
		h--
	}
	return n / h, h
}

// NewMesh builds a 2D mesh; it panics on invalid configuration
// (Validate requires >= 4 clusters).
func NewMesh(cfg Config) *Mesh {
	cfg.Topology = KindMesh
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	w, h := MeshDims(cfg.Clusters)
	return &Mesh{
		cfg:   cfg,
		w:     w,
		h:     h,
		links: newLinkSched(cfg.Clusters*numDirs, cfg.PathsPerCluster),
	}
}

// Kind identifies the topology.
func (m *Mesh) Kind() Kind { return KindMesh }

// Config returns the network configuration.
func (m *Mesh) Config() Config { return m.cfg }

// Dims returns the mesh grid shape.
func (m *Mesh) Dims() (w, h int) { return m.w, m.h }

// MeshHops is the dimension-order route length from src to dst on the
// W×H grid: the Manhattan distance between their coordinates.
func MeshHops(w, src, dst int) int {
	dx := dst%w - src%w
	if dx < 0 {
		dx = -dx
	}
	dy := dst/w - src/w
	if dy < 0 {
		dy = -dy
	}
	return dx + dy
}

// route walks the directed links of the X-then-Y route from src to dst,
// calling f with each link index and the cycle offset (in hops) at which
// the transfer traverses it; it stops early and returns false when f
// does.
func (m *Mesh) route(src, dst int, f func(link, hop int) bool) bool {
	x, y := src%m.w, src/m.w
	dx, dy := dst%m.w, dst/m.w
	hop := 0
	for x != dx {
		dir := dirEast
		nx := x + 1
		if dx < x {
			dir, nx = dirWest, x-1
		}
		if !f((y*m.w+x)*numDirs+dir, hop) {
			return false
		}
		x = nx
		hop++
	}
	for y != dy {
		dir := dirSouth
		ny := y + 1
		if dy < y {
			dir, ny = dirNorth, y-1
		}
		if !f((y*m.w+x)*numDirs+dir, hop) {
			return false
		}
		y = ny
		hop++
	}
	return true
}

// CanReserve reports whether a transfer src -> dst may launch at the
// given cycle: every link of the dimension-order route must have a free
// slot at the cycle the transfer would traverse it.
func (m *Mesh) CanReserve(src, dst int, cycle int64) bool {
	lat := int64(m.cfg.Latency)
	return m.route(src, dst, func(link, hop int) bool {
		return m.links.free(link, cycle+int64(hop)*lat)
	})
}

// Reserve books every link of the route and returns the arrival cycle,
// Manhattan-distance × Latency after launch.
func (m *Mesh) Reserve(src, dst int, cycle int64) (arrival int64, ok bool) {
	if !m.CanReserve(src, dst, cycle) {
		m.stats.Stalls++
		return 0, false
	}
	lat := int64(m.cfg.Latency)
	m.route(src, dst, func(link, hop int) bool {
		m.links.book(link, cycle+int64(hop)*lat)
		return true
	})
	h := MeshHops(m.w, src, dst)
	m.stats.record(h)
	return cycle + int64(h)*lat, true
}

// Stats returns the accumulated measurements.
func (m *Mesh) Stats() Stats { return m.stats }

// Reset clears reservations and statistics.
func (m *Mesh) Reset() {
	m.links.reset()
	m.stats = Stats{}
}
