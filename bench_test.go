// Benchmarks regenerating each table and figure of the paper's
// evaluation. Every benchmark runs the full machine simulation and
// reports the figure's metric through b.ReportMetric (IPC, IPCR,
// communications per instruction, predictor accuracy), so
//
//	go test -bench=. -benchmem
//
// prints the same series the paper plots. cmd/experiments prints the
// full per-benchmark tables; these benches use a representative kernel
// subset per figure to keep runtimes reasonable.
package clustervp_test

import (
	"path/filepath"
	"runtime"
	"testing"

	"clustervp"
	"clustervp/internal/config"
	"clustervp/internal/core"
	"clustervp/internal/trace"
	"clustervp/internal/workload"
)

// benchKernels is a representative cross-section of Table 2: integer
// image code, serial audio code, branchy video code and FP geometry.
var benchKernels = []string{"cjpeg", "gsmdec", "mpeg2enc", "mesaosdemo"}

func runSuiteOn(b *testing.B, cfg clustervp.Config, kernels []string) clustervp.Results {
	b.Helper()
	rs := make([]clustervp.Results, 0, len(kernels))
	for _, k := range kernels {
		r, err := clustervp.Run(cfg, k, 1)
		if err != nil {
			b.Fatal(err)
		}
		rs = append(rs, r)
	}
	return clustervp.Aggregate(cfg.Name, rs)
}

// BenchmarkFig2IPC regenerates Figure 2: IPC for 1/2/4 clusters with and
// without the stride value predictor under baseline steering.
func BenchmarkFig2IPC(b *testing.B) {
	for _, n := range []int{1, 2, 4} {
		for _, vp := range []bool{false, true} {
			name := map[bool]string{false: "nopredict", true: "predict"}[vp]
			b.Run(map[int]string{1: "1cluster", 2: "2cluster", 4: "4cluster"}[n]+"/"+name, func(b *testing.B) {
				cfg := clustervp.Preset(n)
				if vp {
					cfg = cfg.WithVP(clustervp.VPStride)
				}
				var agg clustervp.Results
				for i := 0; i < b.N; i++ {
					agg = runSuiteOn(b, cfg, benchKernels)
				}
				b.ReportMetric(agg.IPC(), "IPC")
				b.ReportMetric(float64(agg.Cycles)/float64(b.N), "cycles/run")
			})
		}
	}
}

// BenchmarkFig3Schemes regenerates Figure 3: imbalance, communications
// per instruction and IPCR for the four configurations on 4 clusters.
func BenchmarkFig3Schemes(b *testing.B) {
	cases := []struct {
		name string
		cfg  clustervp.Config
		ref  clustervp.Config
	}{
		{"Baseline-nopredict", clustervp.Preset(4), clustervp.Preset(1)},
		{"Baseline-predict", clustervp.Preset(4).WithVP(clustervp.VPStride), clustervp.Preset(1).WithVP(clustervp.VPStride)},
		{"VPB-predict", clustervp.Preset(4).WithVP(clustervp.VPStride).WithSteering(clustervp.SteerVPB),
			clustervp.Preset(1).WithVP(clustervp.VPStride)},
		{"VPB-perfect", clustervp.Preset(4).WithVP(clustervp.VPPerfect).WithSteering(clustervp.SteerVPB),
			clustervp.Preset(1).WithVP(clustervp.VPPerfect)},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			var agg, ref clustervp.Results
			for i := 0; i < b.N; i++ {
				agg = runSuiteOn(b, c.cfg, benchKernels)
				ref = runSuiteOn(b, c.ref, benchKernels)
			}
			b.ReportMetric(agg.Imbalance(), "imbalance")
			b.ReportMetric(agg.CommPerInstr(), "comm/instr")
			b.ReportMetric(clustervp.IPCR(agg, ref), "IPCR")
		})
	}
}

// BenchmarkFig4aLatency regenerates Figure 4(a): IPC vs. inter-cluster
// communication latency on the 4-cluster machine.
func BenchmarkFig4aLatency(b *testing.B) {
	for _, lat := range []int{1, 2, 4} {
		for _, vp := range []bool{true, false} {
			name := map[bool]string{false: "nopredict", true: "predict"}[vp]
			b.Run(name+"/lat"+string(rune('0'+lat)), func(b *testing.B) {
				cfg := clustervp.Preset(4).WithComm(lat, 0)
				if vp {
					cfg = cfg.WithVP(clustervp.VPStride).WithSteering(clustervp.SteerVPB)
				}
				var agg clustervp.Results
				for i := 0; i < b.N; i++ {
					agg = runSuiteOn(b, cfg, benchKernels)
				}
				b.ReportMetric(agg.IPC(), "IPC")
			})
		}
	}
}

// BenchmarkFig4bBandwidth regenerates Figure 4(b): IPC vs. paths per
// cluster (1, 2, unbounded).
func BenchmarkFig4bBandwidth(b *testing.B) {
	for _, c := range []struct {
		name  string
		paths int
	}{{"B1", 1}, {"B2", 2}, {"unbounded", 0}} {
		b.Run(c.name, func(b *testing.B) {
			cfg := clustervp.Preset(4).WithComm(1, c.paths).WithVP(clustervp.VPStride).WithSteering(clustervp.SteerVPB)
			var agg clustervp.Results
			for i := 0; i < b.N; i++ {
				agg = runSuiteOn(b, cfg, benchKernels)
			}
			b.ReportMetric(agg.IPC(), "IPC")
			b.ReportMetric(float64(agg.BusStalls)/float64(b.N), "bus-stalls/run")
		})
	}
}

// BenchmarkFig5TableSize regenerates Figure 5: IPC and predictor
// accuracy vs. stride-table size (footprint-scaled sweep; DESIGN.md §3).
func BenchmarkFig5TableSize(b *testing.B) {
	for _, c := range []struct {
		name    string
		entries int
	}{{"16", 16}, {"256", 256}, {"1K", 1024}, {"128K", 128 * 1024}} {
		b.Run(c.name, func(b *testing.B) {
			cfg := clustervp.Preset(4).WithVP(clustervp.VPStride).WithSteering(clustervp.SteerVPB).WithVPTable(c.entries)
			var agg clustervp.Results
			for i := 0; i < b.N; i++ {
				agg = runSuiteOn(b, cfg, benchKernels)
			}
			b.ReportMetric(agg.IPC(), "IPC")
			b.ReportMetric(agg.VP.HitRatio(), "hit-ratio")
			b.ReportMetric(agg.VP.ConfidentFraction(), "confident")
		})
	}
}

// BenchmarkRename2Cycle regenerates the §3.3 experiment: rename/steer
// stage depth 1 vs. 2 on the 4-cluster VPB machine.
func BenchmarkRename2Cycle(b *testing.B) {
	for _, depth := range []int{1, 2} {
		b.Run(map[int]string{1: "rename1", 2: "rename2"}[depth], func(b *testing.B) {
			cfg := clustervp.Preset(4).WithVP(clustervp.VPStride).WithSteering(clustervp.SteerVPB)
			cfg.RenameCycles = depth
			var agg clustervp.Results
			for i := 0; i < b.N; i++ {
				agg = runSuiteOn(b, cfg, benchKernels)
			}
			b.ReportMetric(agg.IPC(), "IPC")
		})
	}
}

// BenchmarkModifiedSteering regenerates the §3.2 observation: both
// steering modifications applied unconditionally vs. baseline vs. VPB.
func BenchmarkModifiedSteering(b *testing.B) {
	for _, c := range []struct {
		name string
		k    func(clustervp.Config) clustervp.Config
	}{
		{"baseline", func(c clustervp.Config) clustervp.Config { return c }},
		{"modified", func(c clustervp.Config) clustervp.Config { return c.WithSteering(clustervp.SteerModified) }},
		{"vpb", func(c clustervp.Config) clustervp.Config { return c.WithSteering(clustervp.SteerVPB) }},
	} {
		b.Run(c.name, func(b *testing.B) {
			cfg := c.k(clustervp.Preset(4).WithVP(clustervp.VPStride))
			var agg clustervp.Results
			for i := 0; i < b.N; i++ {
				agg = runSuiteOn(b, cfg, benchKernels)
			}
			b.ReportMetric(agg.IPC(), "IPC")
			b.ReportMetric(agg.CommPerInstr(), "comm/instr")
			b.ReportMetric(agg.Imbalance(), "imbalance")
		})
	}
}

// BenchmarkAblationNoVerifyCopy measures the design alternative DESIGN.md
// calls out: predict-but-always-copy, approximated by the baseline
// steering with prediction (verification-copies still dispatched) versus
// no prediction — isolating how much of the win comes from eliminated
// transfers rather than steering freedom.
func BenchmarkAblationNoVerifyCopy(b *testing.B) {
	for _, c := range []struct {
		name string
		cfg  clustervp.Config
	}{
		{"nopredict", clustervp.Preset(4)},
		{"predict-baseline-steer", clustervp.Preset(4).WithVP(clustervp.VPStride)},
	} {
		b.Run(c.name, func(b *testing.B) {
			var agg clustervp.Results
			for i := 0; i < b.N; i++ {
				agg = runSuiteOn(b, c.cfg, benchKernels)
			}
			b.ReportMetric(agg.CommPerInstr(), "comm/instr")
			b.ReportMetric(agg.IPC(), "IPC")
		})
	}
}

// BenchmarkSimulatorThroughput measures raw simulator speed (simulated
// instructions per wall second) on the centralized machine, a sanity
// reference for planning larger sweeps.
func BenchmarkSimulatorThroughput(b *testing.B) {
	cfg := clustervp.Preset(1)
	var insts uint64
	for i := 0; i < b.N; i++ {
		r, err := clustervp.Run(cfg, "gsmenc", 1)
		if err != nil {
			b.Fatal(err)
		}
		insts += r.Instructions
	}
	b.ReportMetric(float64(insts)/b.Elapsed().Seconds(), "sim-instrs/s")
}

// BenchmarkCalibration is a fixed pure-integer workload used by the CI
// perf gate as a machine-speed probe: cmd/benchexport divides every
// ns/op by this benchmark's ns/op on the same machine before comparing
// against the checked-in baseline, so the gate measures the simulator's
// shape rather than the runner's absolute speed.
func BenchmarkCalibration(b *testing.B) {
	var acc uint64 = 0x9E3779B97F4A7C15
	for i := 0; i < b.N; i++ {
		for j := 0; j < 1024; j++ {
			acc ^= acc << 13
			acc ^= acc >> 7
			acc ^= acc << 17
		}
	}
	if acc == 0 {
		b.Fatal("unreachable; defeats dead-code elimination")
	}
}

// BenchmarkGridThroughput measures the cold-job grid path end to end:
// a 12-job trace-replay grid (3 kernels x 4 machines) through a fresh
// Engine every iteration, so result memoization never fires and every
// job pays simulator construction (via the Sim pool) and trace decode
// (via the shared arena). The allocs/job metric is the CI-gated figure
// for the cold-path rework: it counts every allocation in the timed
// region — workers, scheduling and simulation — divided by jobs run.
func BenchmarkGridThroughput(b *testing.B) {
	dir := b.TempDir()
	cfgs := []clustervp.Config{
		clustervp.Preset(1),
		clustervp.Preset(2),
		clustervp.Preset(4),
		clustervp.Preset(4).WithVP(clustervp.VPStride).WithSteering(clustervp.SteerVPB),
	}
	var jobs []clustervp.Job
	for _, c := range cfgs {
		for _, k := range []string{"cjpeg", "gsmdec", "rawcaudio"} {
			jobs = append(jobs, clustervp.Job{Config: c, Kernel: k, Scale: 1})
		}
	}
	traced, err := clustervp.MaterializeTraces(dir, jobs)
	if err != nil {
		b.Fatal(err)
	}
	// Warm pass: populates the shared trace arena and Sim pool so the
	// timed region measures the steady-state cold-job path rather than
	// first-touch decoding.
	if err := clustervp.FirstErr(clustervp.NewEngine(0).Run(traced)); err != nil {
		b.Fatal(err)
	}

	var insts uint64
	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rs := clustervp.NewEngine(0).Run(traced)
		for _, r := range rs {
			if r.Err != nil {
				b.Fatal(r.Err)
			}
			insts += r.Res.Instructions
		}
	}
	b.StopTimer()
	runtime.ReadMemStats(&m1)
	jobsRun := float64(b.N * len(traced))
	b.ReportMetric(jobsRun/b.Elapsed().Seconds(), "jobs/s")
	b.ReportMetric(float64(insts)/b.Elapsed().Seconds(), "sim-instrs/s")
	b.ReportMetric(float64(m1.Mallocs-m0.Mallocs)/jobsRun, "allocs/job")
}

// BenchmarkSimReset isolates the Sim.Reset lifecycle — the cost a
// pooled simulator pays per job instead of full construction: rewinding
// the ROB ring, rename tables, scheduler bitmaps, caches and stats in
// place.
func BenchmarkSimReset(b *testing.B) {
	cfg := config.Preset(4).WithVP(config.VPStride).WithSteering(config.SteerVPB)
	prog, err := workload.Build("rawcaudio", 1, 0)
	if err != nil {
		b.Fatal(err)
	}
	src := trace.NewExecutor(prog)
	s, err := core.NewFromSource(cfg, src, prog.Name)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Reset(cfg, src, prog.Name); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTraceReplayThroughput measures simulated instructions per
// wall second when the stream comes from a .cvt file instead of the
// in-process functional executor — the trace subsystem's headline
// number, directly comparable to BenchmarkSimulatorThroughput.
func BenchmarkTraceReplayThroughput(b *testing.B) {
	path := filepath.Join(b.TempDir(), "gsmenc.cvt")
	if _, err := clustervp.WriteKernelTrace(path, "gsmenc", 1, 0); err != nil {
		b.Fatal(err)
	}
	cfg := clustervp.Preset(1)
	var insts uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := clustervp.RunTraceFile(cfg, path)
		if err != nil {
			b.Fatal(err)
		}
		insts += r.Instructions
	}
	b.ReportMetric(float64(insts)/b.Elapsed().Seconds(), "sim-instrs/s")
}
